"""Span tracer: null fast path, nesting, phase accounting, Chrome export."""

import json

import pytest

from repro.engine import LLMEngine, Request, SchedulerConfig
from repro.models import GIB, get_model
from repro.obs import (
    NULL_TRACER,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.registry import TelemetryRegistry
from repro.platforms import H100
from repro.workloads import token_block


class FakeClock:
    """Deterministic monotonic clock; tests advance it explicitly."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float) -> None:
        self.t += dt


def make_tracer(**kwargs):
    clock = FakeClock()
    return Tracer(clock=clock, **kwargs), clock


class TestNullFastPath:
    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_disabled_primitives_record_nothing(self):
        tracer = Tracer(capacity=0, enabled=False)
        tracer.begin_span("schedule")
        tracer.instant("marker")
        tracer.counter("depth", 3)
        tracer.step_begin(0)
        assert tracer.step_end() is None
        assert tracer.end_span() is None
        assert len(tracer) == 0
        assert tracer.spans == []
        assert tracer.open_depth == 0

    def test_disabled_span_contextmanager_is_inert(self):
        tracer = Tracer(capacity=0, enabled=False)
        with tracer.span("schedule"):
            pass
        assert len(tracer) == 0

    def test_null_tracer_ring_stays_empty_under_load(self):
        for _ in range(100):
            NULL_TRACER.instant("spam")
        assert len(NULL_TRACER) == 0


class TestSpans:
    def test_single_span_duration(self):
        tracer, clock = make_tracer()
        tracer.begin_span("schedule")
        clock.tick(2.0)
        span = tracer.end_span()
        assert span is not None
        assert span.name == "schedule"
        assert span.start == 0.0
        assert span.duration == 2.0
        assert span.kind == "X"
        assert span.depth == 0

    def test_nesting_depth_and_monotonic_timestamps(self):
        tracer, clock = make_tracer()
        tracer.begin_span("outer")
        clock.tick(1.0)
        tracer.begin_span("inner")
        clock.tick(1.0)
        tracer.end_span()
        clock.tick(1.0)
        tracer.end_span()
        inner, outer = tracer.spans
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert inner.start >= outer.start
        assert outer.duration == 3.0
        assert inner.duration == 1.0
        ends = [s.start + s.duration for s in tracer.spans]
        assert ends == sorted(ends)  # record order is end order

    def test_exclusive_time_pauses_parent(self):
        tracer, clock = make_tracer()
        tracer.step_begin(0)
        clock.tick(1.0)
        tracer.begin_span("schedule")
        clock.tick(2.0)  # schedule self-time
        tracer.begin_span("allocate")
        clock.tick(4.0)  # allocate self-time, not schedule's
        tracer.end_span()
        clock.tick(1.0)  # schedule self-time again
        tracer.end_span()
        phases = tracer.step_end()
        assert phases == {"schedule": 3.0, "allocate": 4.0}

    def test_phases_sum_at_most_step_duration(self):
        tracer, clock = make_tracer()
        tracer.step_begin(0)
        clock.tick(0.5)  # step overhead outside any phase
        tracer.begin_span("schedule")
        clock.tick(2.0)
        tracer.end_span()
        clock.tick(0.5)
        phases = tracer.step_end()
        step_span = tracer.spans[-1]
        assert step_span.name == "step"
        assert sum(phases.values()) <= step_span.duration
        assert step_span.duration == 3.0

    def test_step_totals_reset_between_steps(self):
        tracer, clock = make_tracer()
        for index in range(2):
            tracer.step_begin(index)
            tracer.begin_span("schedule")
            clock.tick(1.0)
            tracer.end_span()
            assert tracer.step_end() == {"schedule": 1.0}

    def test_span_contextmanager_closes_on_error(self):
        tracer, clock = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("schedule"):
                clock.tick(1.0)
                raise RuntimeError("boom")
        assert tracer.open_depth == 0
        assert tracer.spans[-1].duration == 1.0

    def test_capacity_is_a_ring(self):
        tracer, clock = make_tracer(capacity=4)
        for i in range(10):
            tracer.instant(f"i{i}")
        assert len(tracer) == 4
        assert [s.name for s in tracer.spans] == ["i6", "i7", "i8", "i9"]

    def test_instant_and_counter_kinds(self):
        tracer, _ = make_tracer()
        tracer.instant("queue/push", cat="scheduler", args={"depth": 3})
        tracer.counter("engine/running", 7)
        instant, counter = tracer.spans
        assert (instant.kind, instant.duration) == ("i", 0.0)
        assert counter.kind == "C"
        assert counter.args == {"value": 7}

    def test_clear_keeps_open_spans(self):
        tracer, clock = make_tracer()
        tracer.begin_span("outer")
        tracer.instant("marker")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.open_depth == 1
        clock.tick(1.0)
        assert tracer.end_span() is not None


class TestChromeExport:
    def _populated(self):
        tracer, clock = make_tracer()
        tracer.step_begin(0)
        clock.tick(0.001)
        tracer.begin_span("schedule")
        clock.tick(0.002)
        tracer.end_span()
        tracer.instant("queue/push", cat="scheduler", args={"depth": 1})
        tracer.counter("engine/running", 2)
        tracer.step_end()
        return tracer

    def test_round_trips_through_json(self):
        payload = chrome_trace(self._populated())
        decoded = json.loads(json.dumps(payload))
        assert decoded == payload
        assert decoded["displayTimeUnit"] == "ms"

    def test_valid_phases_and_timestamps(self):
        payload = chrome_trace(self._populated())
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"])
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases == {"M", "X", "i", "C"}
        for event in payload["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
                assert event["ts"] >= 0.0

    def test_memory_timeline_on_separate_pid(self):
        registry = TelemetryRegistry()
        registry.record_point("mem/used", 1.5, 4096.0)
        payload = chrome_trace(self._populated(), registry)
        validate_chrome_trace(payload)
        mem = [e for e in payload["traceEvents"] if e["name"] == "mem/used"]
        assert mem and all(e["pid"] == 1 and e["ph"] == "C" for e in mem)
        walls = [e for e in payload["traceEvents"] if e.get("cat") == "phase"]
        assert walls and all(e["pid"] == 0 for e in walls)

    def test_write_validates_and_is_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), self._populated())
        with open(path) as f:
            decoded = json.load(f)
        assert validate_chrome_trace(decoded) > 0

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z", "name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                                  "ts": -1.0, "dur": 0.0}]}
            )


class TestEngineIntegration:
    def _traced_engine(self):
        model = get_model("llama3-8b")
        from repro.baselines import make_manager

        manager = make_manager("jenga", model, 2 * GIB)
        tracer = Tracer()
        engine = LLMEngine(
            model, H100, manager, config=SchedulerConfig(), tracer=tracer
        )
        requests = [
            Request.text(f"t{i}", token_block(0, "t", i, 64), 8)
            for i in range(4)
        ]
        engine.add_requests(requests)
        return engine, tracer

    def test_step_records_carry_phases(self):
        engine, tracer = self._traced_engine()
        metrics = engine.run()
        engine.close()
        assert metrics.steps, "no steps ran"
        for record in metrics.steps:
            assert record.phases is not None
            assert "schedule" in record.phases
            assert all(v >= 0.0 for v in record.phases.values())
        assert tracer.open_depth == 0

    def test_phase_sums_bounded_by_step_spans(self):
        engine, tracer = self._traced_engine()
        metrics = engine.run()
        engine.close()
        step_spans = [s for s in tracer.spans if s.cat == "step"]
        assert len(step_spans) == len(metrics.steps)
        slack = 1e-9  # float accumulation across pause/resume marks
        for record, span in zip(metrics.steps, step_spans):
            assert sum(record.phases.values()) <= span.duration + slack

    def test_untraced_engine_records_no_phases(self):
        model = get_model("llama3-8b")
        from repro.baselines import make_manager

        manager = make_manager("jenga", model, 2 * GIB)
        engine = LLMEngine(model, H100, manager, config=SchedulerConfig())
        engine.add_requests(
            [Request.text("t0", token_block(0, "t", 0, 64), 4)]
        )
        metrics = engine.run()
        assert all(r.phases is None for r in metrics.steps)
        assert len(engine.tracer) == 0  # NULL_TRACER stayed empty

    def test_traced_trace_exports_valid(self, tmp_path):
        engine, tracer = self._traced_engine()
        engine.run()
        engine.close()
        path = tmp_path / "engine_trace.json"
        write_chrome_trace(str(path), tracer)
        with open(path) as f:
            assert validate_chrome_trace(json.load(f)) > 0
