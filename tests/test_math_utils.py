"""Tests for page-size arithmetic (LCM/GCD/MAX compatibility layer)."""

import pytest

from repro.core.math_utils import (
    compatible_page_bytes,
    gcd_of,
    lcm_blowup,
    lcm_of,
    tokens_per_page_for_max,
)


class TestLcmOf:
    def test_paper_example(self):
        # Section 1: embeddings of 2KB and 3KB -> 6KB compatible page.
        assert lcm_of([2048, 3072]) == 6144

    def test_single_size(self):
        assert lcm_of([4096]) == 4096

    def test_identical_sizes(self):
        assert lcm_of([256, 256, 256]) == 256

    def test_coprime_sizes(self):
        assert lcm_of([7, 11]) == 77

    def test_one_divides_other(self):
        assert lcm_of([256, 1024]) == 1024

    def test_three_sizes(self):
        assert lcm_of([4, 6, 10]) == 60

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lcm_of([])

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            lcm_of([0, 4])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            lcm_of([-4, 4])


class TestGcdOf:
    def test_basic(self):
        assert gcd_of([256, 384]) == 128

    def test_single(self):
        assert gcd_of([100]) == 100

    def test_coprime(self):
        assert gcd_of([7, 11]) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            gcd_of([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            gcd_of([0])


class TestCompatiblePageBytes:
    def test_lcm_strategy(self):
        # Figure 6: image pages 256, text pages 384 -> 768.
        assert compatible_page_bytes([256, 384], "lcm") == 768

    def test_gcd_strategy(self):
        assert compatible_page_bytes([256, 384], "gcd") == 128

    def test_max_strategy(self):
        assert compatible_page_bytes([256, 384], "max") == 384

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            compatible_page_bytes([256], "median")

    def test_max_empty_raises(self):
        with pytest.raises(ValueError):
            compatible_page_bytes([], "max")


class TestBlowup:
    def test_paper_jamba_bound(self):
        # The paper reports the worst LCM across vLLM models is 84x
        # (Jamba); check the arithmetic that statement relies on.
        attn_page = 16 * 16384  # 16 tokens x 16 KiB
        mamba_page = 1344 * 16384
        assert lcm_blowup([attn_page, mamba_page]) == 84

    def test_identical_is_one(self):
        assert lcm_blowup([512, 512]) == 1

    def test_tokens_per_page_for_max(self):
        # Jamba under MAX: self-attention pages would need 1344 tokens.
        assert tokens_per_page_for_max(16 * 16384, 1344 * 16384, 16) == 16 * 84

    def test_tokens_per_page_validates(self):
        with pytest.raises(ValueError):
            tokens_per_page_for_max(0, 10, 16)
        with pytest.raises(ValueError):
            tokens_per_page_for_max(10, 10, 0)
