"""Tests for the serving-engine simulator."""

import pytest

from repro.baselines import PagedAttentionManager, make_manager
from repro.core.kv_manager import JengaKVCacheManager
from repro.engine import LLMEngine, Request, SchedulerConfig, profile_config
from repro.engine.request import RequestState
from repro.engine.scheduler import WaitingQueue
from repro.models import GIB, get_model
from repro.platforms import H100, L4, kv_budget
from repro.workloads import token_block


def make_engine(model_name="llama3-8b", system="jenga", kv=2 * GIB, gpu=H100,
                caching=True, **cfg):
    model = get_model(model_name)
    mgr = make_manager(system, model, kv, enable_prefix_caching=caching)
    return LLMEngine(model, gpu, mgr, config=SchedulerConfig(**cfg))


def reqs(n, prompt=64, output=8, arrival=0.0, tag="t"):
    return [
        Request.text(f"{tag}{i}", token_block(0, tag, i, prompt), output,
                     arrival_time=arrival)
        for i in range(n)
    ]


class TestBasicServing:
    def test_single_request_completes(self):
        eng = make_engine()
        eng.add_requests(reqs(1, prompt=100, output=5))
        m = eng.run()
        assert len(m.requests) == 1
        r = m.requests[0]
        assert r.output_len == 5
        assert r.finish_time > r.first_token_time >= r.arrival_time
        assert not eng.failed

    def test_batch_completes(self):
        eng = make_engine()
        eng.add_requests(reqs(20, prompt=128, output=16))
        m = eng.run()
        assert len(m.requests) == 20
        assert m.total_output_tokens == 20 * 16

    def test_fcfs_first_token_order(self):
        eng = make_engine()
        rs = reqs(5, prompt=64, output=4)
        for i, r in enumerate(rs):
            r.arrival_time = float(i)
        eng.add_requests(rs)
        m = eng.run()
        by_id = {r.request_id: r for r in m.requests}
        firsts = [by_id[f"t{i}"].first_token_time for i in range(5)]
        assert firsts == sorted(firsts)

    def test_arrivals_gate_admission(self):
        eng = make_engine()
        late = reqs(1, prompt=64, output=4)[0]
        late.arrival_time = 100.0
        eng.add_request(late)
        m = eng.run()
        assert m.requests[0].first_token_time >= 100.0

    def test_deterministic_replay(self):
        m1 = None
        for _ in range(2):
            eng = make_engine()
            eng.add_requests(reqs(12, prompt=200, output=12))
            m = eng.run()
            if m1 is None:
                m1 = m
            else:
                assert m.makespan == m1.makespan
                assert [s.decode_batch for s in m.steps] == [
                    s.decode_batch for s in m1.steps
                ]

    def test_metrics_latency_definitions(self):
        eng = make_engine()
        eng.add_requests(reqs(1, prompt=64, output=10))
        m = eng.run()
        r = m.requests[0]
        assert r.e2el == pytest.approx(r.finish_time - r.arrival_time)
        assert r.tpot == pytest.approx(
            (r.finish_time - r.first_token_time) / 9
        )


class TestChunkedPrefill:
    def test_long_prompt_spans_steps(self):
        eng = make_engine(max_num_batched_tokens=256)
        eng.add_requests(reqs(1, prompt=1000, output=2))
        m = eng.run()
        prefill_steps = [s for s in m.steps if s.prefill_tokens > 0]
        assert len(prefill_steps) >= 4
        assert all(s.prefill_tokens <= 256 for s in m.steps)

    def test_disabled_chunking_waits_for_budget(self):
        eng = make_engine(max_num_batched_tokens=256, enable_chunked_prefill=False)
        eng.add_requests(reqs(1, prompt=100, output=2) + reqs(1, prompt=500, output=2, tag="u"))
        m = eng.run(max_steps=50)
        # The 500-token prompt can never fit a 256 budget -> never scheduled.
        assert len(m.requests) == 1

    def test_decode_has_priority_over_prefill(self):
        eng = make_engine(max_num_batched_tokens=128)
        first = reqs(1, prompt=64, output=50)[0]
        second = reqs(1, prompt=1000, output=2, tag="u")[0]
        second.arrival_time = 0.01
        eng.add_request(first)
        eng.add_request(second)
        m = eng.run()
        # Steps that prefill the long prompt still decode the short one.
        mixed = [s for s in m.steps if s.prefill_tokens > 0 and s.decode_batch > 0]
        assert mixed


class TestMemoryPressure:
    def test_preemption_under_pressure(self):
        # 96 MiB with ~42 MiB per request: roughly two fit at a time.
        eng = make_engine(kv=96 * 1024 * 1024)
        eng.add_requests(reqs(16, prompt=300, output=32))
        m = eng.run(max_steps=20000)
        assert len(m.requests) == 16  # everyone eventually finishes
        assert max(s.num_running for s in m.steps) <= 3

    def test_oversized_request_fails_cleanly(self):
        eng = make_engine(kv=32 * 1024 * 1024, caching=False)
        eng.add_requests(reqs(1, prompt=50_000, output=4))
        m = eng.run(max_steps=1000)
        assert len(eng.failed) == 1
        assert not m.requests
        assert eng.manager.stats().used_bytes == 0

    def test_window_model_survives_where_baseline_fails(self):
        """The paper's L4 Ministral observation: vLLM cannot serve the
        longest requests, Jenga can."""
        model = get_model("ministral-8b", quantized=True)
        budget = kv_budget(model, L4)
        prompt = token_block(0, "long", 0, 120_000)
        for system, expect_fail in (("vllm", True), ("jenga", False)):
            mgr = make_manager(system, model, budget.kv_bytes, enable_prefix_caching=False)
            eng = LLMEngine(model, L4, mgr)
            eng.add_request(Request.text("big", prompt, 8))
            m = eng.run(max_steps=5000)
            assert bool(eng.failed) == expect_fail, system

    def test_vllm_and_jenga_identical_on_plain_llama(self):
        """Figure 13: no overhead on self-attention-only models."""
        results = []
        for system in ("vllm", "jenga"):
            eng = make_engine(system=system, kv=GIB, caching=False)
            eng.add_requests(reqs(24, prompt=512, output=24))
            results.append(eng.run())
        assert results[0].makespan == pytest.approx(results[1].makespan)
        assert results[0].mean_decode_batch() == results[1].mean_decode_batch()


class TestPrefixCachingInEngine:
    def test_second_identical_prompt_faster(self):
        eng = make_engine(kv=2 * GIB)
        prompt = token_block(0, "shared", 0, 2000)
        a = Request.text("a", prompt + [1], 4, arrival_time=0.0)
        b = Request.text("b", prompt + [2], 4, arrival_time=50.0)
        eng.add_requests([a, b])
        m = eng.run()
        by_id = {r.request_id: r for r in m.requests}
        assert by_id["b"].cached_prompt_tokens >= 1984
        assert by_id["b"].ttft < by_id["a"].ttft

    def test_hit_rate_reported(self):
        eng = make_engine()
        prompt = token_block(0, "shared", 1, 512)
        eng.add_request(Request.text("a", prompt + [1], 4, arrival_time=0.0))
        eng.add_request(Request.text("b", prompt + [2], 4, arrival_time=10.0))
        m = eng.run()
        assert m.prefix_hit_rate > 0


class TestVisionServing:
    def make_vlm(self, system):
        model = get_model("llava-onevision-7b")
        mgr = make_manager(system, model, 4 * GIB, enable_prefix_caching=False)
        return model, LLMEngine(model, H100, mgr, config=SchedulerConfig(max_num_batched_tokens=1024))

    def vlm_request(self, model, rid="v0"):
        per_image = model.vision.tokens_per_image
        return Request.multimodal(
            rid,
            [("image", token_block(0, rid, 0, per_image * 3)), ("text", token_block(0, rid + "q", 0, 64))],
            max_output_tokens=8,
        )

    def test_jenga_encodes_once(self):
        model, eng = self.make_vlm("jenga")
        eng.add_request(self.vlm_request(model))
        m = eng.run()
        assert len(m.requests) == 1

    def test_vision_cache_improves_latency(self):
        """Figure 18: the vision-embedding cache avoids re-running the
        encoder on every prefill chunk."""
        lat = {}
        for system in ("vllm", "jenga"):
            model, eng = self.make_vlm(system)
            eng.add_request(self.vlm_request(model))
            m = eng.run()
            lat[system] = m.requests[0].e2el
        assert lat["jenga"] < lat["vllm"]

    def test_vision_pages_freed_after_prefill(self):
        model, eng = self.make_vlm("jenga")
        req = self.vlm_request(model)
        eng.add_request(req)
        m = eng.run()
        stats = eng.manager.stats()
        assert stats.used_bytes_by_group.get("vision_embed", 0) == 0


class TestWaitingQueue:
    def test_fcfs_order(self):
        q = WaitingQueue()
        a = Request.text("a", [1], 1, arrival_time=2.0)
        b = Request.text("b", [1], 1, arrival_time=1.0)
        q.push(a)
        q.push(b)
        assert q.pop_ready(10.0) is b
        assert q.pop_ready(10.0) is a

    def test_arrival_gating(self):
        q = WaitingQueue()
        q.push(Request.text("a", [1], 1, arrival_time=5.0))
        assert q.peek_ready(4.0) is None
        assert q.pop_ready(4.0) is None
        assert q.next_arrival() == 5.0
        assert q.pop_ready(5.0) is not None


class TestProfiles:
    def test_profiles_exist(self):
        for name in ("vllm", "sglang", "tgi"):
            cfg = profile_config(name)
            assert cfg.max_num_batched_tokens > 0

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile_config("lmdeploy")

    def test_tgi_shortens_outputs(self):
        model = get_model("llama3-8b")
        mgr = make_manager("tgi", model, GIB)
        eng = LLMEngine(model, H100, mgr, config=profile_config("tgi"))
        r = reqs(1, prompt=64, output=100)[0]
        eng.add_request(r)
        assert r.max_output_tokens == 60

    def test_override(self):
        cfg = profile_config("vllm", max_num_seqs=17)
        assert cfg.max_num_seqs == 17
