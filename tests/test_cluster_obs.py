"""Cluster-scope observability: merged traces, ClusterReport, CLI."""

import json

from repro.cli import main
from repro.core.events import AdmissionBlocked, PageEvicted, RequestRouted
from repro.core.math_utils import percentile
from repro.engine.request import Request
from repro.engine.scheduler import profile_config
from repro.models import GIB, get_model
from repro.obs import (
    ClusterReport,
    cluster_chrome_trace,
    cluster_markdown,
    cluster_reports_payload,
    render_cluster_reports,
    slo_percentiles,
    validate_chrome_trace,
    write_cluster_trace,
)
from repro.obs.cluster import CLUSTER_PID, replica_pids
from repro.platforms import H100
from repro.serving import ServingCluster
from repro.workloads import poisson_arrivals, token_block

MODEL = get_model("llama3.2-1b")
KV = GIB // 4


def forked_requests(num_families=3, fanout=4, prefix_tokens=256,
                    suffix_tokens=32, output=8, rate=8.0, seed=3):
    requests = []
    for j in range(fanout):
        for f in range(num_families):
            prefix = token_block(0, f"family{f}", 0, prefix_tokens)
            suffix = token_block(1, f"fam{f}-sfx{j}", j, suffix_tokens)
            requests.append(
                Request.text(f"j{j:02d}-f{f}", prefix + suffix, output)
            )
    poisson_arrivals(requests, rate=rate, seed=seed)
    return requests


def traced_cluster(num_replicas=2, policy="cache_aware", **build_kwargs):
    cluster = ServingCluster.build(
        MODEL, H100, KV, num_replicas, policy=policy,
        config=profile_config("vllm", record_memory=True),
        tracing=True, telemetry=True, pressure=True, **build_kwargs,
    )
    cluster.submit(forked_requests())
    cluster.run()
    return cluster


class TestMergedTrace:
    def test_trace_validates_with_one_lane_pair_per_replica(self):
        cluster = traced_cluster(num_replicas=3)
        payload = cluster_chrome_trace(cluster)
        assert validate_chrome_trace(payload) == len(payload["traceEvents"])
        pids = {e["pid"] for e in payload["traceEvents"]}
        expected = {CLUSTER_PID}
        for i in range(3):
            expected.update(replica_pids(i))
        assert pids == expected
        metas = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"] if e["ph"] == "M"
        }
        assert metas[CLUSTER_PID] == "cluster router (simulated clock)"
        assert metas[1] == "replica-0 (wall clock)"
        assert metas[2] == "replica-0 (simulated clock)"
        cluster.close()

    def test_router_lane_carries_every_dispatch(self):
        cluster = traced_cluster()
        payload = cluster_chrome_trace(cluster)
        routes = [
            e for e in payload["traceEvents"]
            if e["pid"] == CLUSTER_PID and e["ph"] == "i"
        ]
        assert len(routes) == cluster.num_dispatched == 12
        replica_ids = {r.replica_id for r in cluster.replicas}
        for event in routes:
            assert event["args"]["replica"] in replica_ids
            assert event["args"]["policy"] == "cache_aware"
        # Route instants are stamped on the simulated arrival clock.
        times = [e["ts"] for e in routes]
        assert times == sorted(times)
        cluster.close()

    def test_replica_lanes_separate_wall_and_sim_clocks(self):
        cluster = traced_cluster()
        payload = cluster_chrome_trace(cluster)
        wall_pid, sim_pid = replica_pids(0)
        wall = [e for e in payload["traceEvents"]
                if e["pid"] == wall_pid and e["ph"] != "M"]
        sim = [e for e in payload["traceEvents"]
               if e["pid"] == sim_pid and e["ph"] != "M"]
        assert wall and all(e["ph"] in ("X", "i", "C") for e in wall)
        # Sim lane is counters only: mem/* plus the pressure timelines.
        assert sim and all(e["ph"] == "C" for e in sim)
        names = {e["name"] for e in sim}
        assert any(name.startswith("mem/") for name in names)
        assert any(name.startswith("pressure/") for name in names)
        cluster.close()

    def test_untraced_cluster_has_empty_route_log(self):
        cluster = ServingCluster.build(MODEL, H100, KV, 2)
        cluster.submit(forked_requests())
        cluster.run()
        assert cluster.route_log == []
        # A merged trace is still valid: meta lanes only, no spans.
        payload = cluster_chrome_trace(cluster)
        validate_chrome_trace(payload)
        assert all(e["ph"] == "M" for e in payload["traceEvents"])
        cluster.close()

    def test_write_cluster_trace_round_trips(self, tmp_path):
        cluster = traced_cluster()
        path = tmp_path / "cluster.json"
        payload = write_cluster_trace(str(path), cluster)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == len(payload["traceEvents"])
        cluster.close()


class TestClusterReport:
    def test_slo_percentiles_match_direct_computation(self):
        cluster = traced_cluster()
        report = ClusterReport.from_cluster(cluster)
        summary = cluster.summary()
        requests = [
            r for m in summary.per_replica.values() for r in m.requests
        ]
        assert report.slo["requests"] == len(requests) == 12
        assert report.slo["ttft_p50_s"] == percentile(
            [r.ttft for r in requests], 0.5
        )
        assert report.slo["e2e_p99_s"] == percentile(
            [r.e2el for r in requests], 0.99
        )
        tbt = [r.tpot for r in requests if r.output_len > 1]
        assert report.slo["tbt_p99_s"] == percentile(tbt, 0.99)
        cluster.close()

    def test_per_replica_counters_sum_to_cluster_aggregates(self):
        # Property: the report's aggregated counters must equal the sum of
        # the independent per-replica registries, and the per-replica
        # telemetry must agree with the cluster summary computed from
        # engine state -- two fully independent accounting paths.
        cluster = traced_cluster(num_replicas=3)
        report = ClusterReport.from_cluster(cluster)
        summary = cluster.summary()
        manual = {}
        for replica in cluster.replicas:
            for name, value in replica.registry.counters.items():
                manual[name] = manual.get(name, 0) + value
        assert report.counters == manual
        assert report.counters["requests/finished"] == summary.finished == 12
        assert report.counters["routing/requests"] == cluster.num_dispatched
        assert (report.counters["prefix/hit_tokens"]
                == summary.prefix_hit_tokens)
        assert (report.counters.get("preempt/victim", 0)
                + report.counters.get("preempt/self", 0)
                == summary.preemptions)
        routed = [
            report.counters.get(f"routing/replica/{r.replica_id}", 0)
            for r in cluster.replicas
        ]
        assert routed == list(summary.routed_counts)
        cluster.close()

    def test_rows_cover_every_replica(self):
        cluster = traced_cluster(num_replicas=3)
        report = ClusterReport.from_cluster(cluster)
        assert [row.replica_id for row in report.rows] == [
            "replica-0", "replica-1", "replica-2"
        ]
        assert sum(row.routed for row in report.rows) == 12
        assert sum(row.finished for row in report.rows) == 12
        for row in report.rows:
            assert 0.0 <= row.pressure_score <= 1.0
            assert set(row.gauges) == {
                name for name in row.gauges if name.startswith("pressure/")
            }
        cluster.close()

    def test_render_and_payload(self):
        cluster = traced_cluster()
        report = ClusterReport.from_cluster(cluster)
        text = render_cluster_reports([report])
        assert "hit rate by routing policy" in text
        assert "cache_aware" in text and "replica-1" in text
        assert "ttft_p50" in text
        md = cluster_markdown([report])
        assert md.count("| cache_aware |") == 2  # policy + slo tables
        payload = json.loads(json.dumps(cluster_reports_payload([report])))
        assert payload["policies"]["cache_aware"]["finished"] == 12
        assert "ttft_p99_s" in payload["policies"]["cache_aware"]["slo"]
        cluster.close()

    def test_slo_percentiles_empty(self):
        slo = slo_percentiles([])
        assert slo["requests"] == 0.0
        assert slo["ttft_p50_s"] == 0.0 and slo["e2e_p99_s"] == 0.0


class TestClusterTeardown:
    def test_close_detaches_monitors_idempotently(self):
        cluster = traced_cluster()
        replica = cluster.replicas[0]
        before = dict(replica.registry.counters)
        cluster.close()
        cluster.close()  # idempotent
        # A reused bus must not feed the dead registry anymore.
        replica.events.emit(
            RequestRouted("ghost", replica.replica_id, "cache_aware", 0)
        )
        # PageEvicted still reaches the engine's admission-cache
        # invalidation handler (bound for the bus's lifetime), but no
        # observer counts it anymore: the registry stays frozen.
        replica.events.emit(PageEvicted("full", 1, "small"))
        assert replica.registry.counters == before
        assert not replica.events.has_subscribers(RequestRouted)
        assert not replica.events.has_subscribers(AdmissionBlocked)

    def test_registry_stays_readable_after_close(self):
        cluster = traced_cluster()
        cluster.close()
        report_text = render_cluster_reports(
            [ClusterReport.from_cluster(cluster)]
        )
        assert "cluster report" in report_text


class TestClusterReportCLI:
    ARGS = [
        "cluster-report", "--model", "llama3.2-1b", "--gpu", "h100",
        "--kv-gib", "0.25", "--replicas", "2", "--fanout", "2",
        "--families", "3", "--seed", "3",
    ]

    def test_text_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "hit rate by routing policy" in out
        assert "round_robin" in out and "cache_aware" in out
        assert "replica-0" in out and "replica-1" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["policies"]) == {
            "round_robin", "least_loaded", "cache_aware"
        }
        for report in payload["policies"].values():
            assert report["finished"] == 6
            assert "ttft_p99_s" in report["slo"]

    def test_trace_and_summary_files(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        summary = tmp_path / "summary.md"
        assert main(self.ARGS + [
            "--policies", "cache_aware",
            "--trace", str(trace), "--summary", str(summary),
        ]) == 0
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) > 0
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {CLUSTER_PID, 1, 2, 3, 4}
        md = summary.read_text()
        assert md.startswith("## Cluster report")
        assert "| cache_aware |" in md
