"""Cross-stream (multimodal) prefix caching through the full manager.

VLM requests interleave text and image tokens; the self-attention,
cross-attention, and vision-embedding groups each see different streams,
and the model-wide hit is the longest global prefix all of them can serve
(Section 5.2's intersection rule over heterogeneous streams)."""

import pytest

from repro.core.kv_manager import JengaKVCacheManager
from repro.core.layer_policy import (
    CROSS_ATTENTION,
    FULL_ATTENTION,
    GroupSpec,
    VISION_EMBEDDING,
)
from repro.core.sequence import IMAGE, TEXT, SequenceSpec

T = frozenset({TEXT})
I = frozenset({IMAGE})


def mllama_specs(tpp=4):
    """Self-attention over text, cross-attention over images (mllama)."""
    return {
        "self": GroupSpec("self", FULL_ATTENTION, 4, 64, tokens_per_page=tpp,
                          accepted_tags=T),
        "cross": GroupSpec("cross", CROSS_ATTENTION, 1, 64, tokens_per_page=tpp,
                           accepted_tags=I),
    }


def run_request(mgr, seq, now=1.0):
    hit = mgr.begin_request(seq)
    assert mgr.allocate_up_to(seq, len(seq))
    mgr.commit(seq, len(seq), now=now)
    return hit


def vlm_seq(rid, image_tokens, question, extra=()):
    return SequenceSpec.multimodal(
        rid,
        [(IMAGE, list(image_tokens)), (TEXT, list(question) + list(extra))],
    )


class TestMllamaHits:
    def test_same_image_different_question(self):
        """Reusing the same image hits the cross-attention cache even when
        the text question differs -- but the self-attention (text) stream
        diverges at the question, so the global hit ends there."""
        mgr = JengaKVCacheManager(mllama_specs(), 256 * 256)
        img = range(100, 132)  # 32 image tokens
        q1 = range(1, 9)
        s1 = vlm_seq("r1", img, q1)
        run_request(mgr, s1)
        mgr.release(s1)

        q2 = range(50, 58)
        s2 = vlm_seq("r2", img, q2)
        hit = mgr.begin_request(s2)
        # Global prefix 32 = all image tokens (text stream length 0 there,
        # trivially valid; image stream 32, fully cached).
        assert hit == 32

    def test_same_image_same_question_prefix(self):
        mgr = JengaKVCacheManager(mllama_specs(), 256 * 256)
        img = range(100, 132)
        q = range(1, 9)
        s1 = vlm_seq("r1", img, q)
        run_request(mgr, s1)
        mgr.release(s1)
        s2 = vlm_seq("r2", img, q, extra=[77, 78])
        hit = mgr.begin_request(s2)
        # Image (32) + full shared question (8) = 40 global tokens.
        assert hit == 40

    def test_different_image_no_cross_hit(self):
        mgr = JengaKVCacheManager(mllama_specs(), 256 * 256)
        s1 = vlm_seq("r1", range(100, 132), range(1, 9))
        run_request(mgr, s1)
        mgr.release(s1)
        s2 = vlm_seq("r2", range(200, 232), range(1, 9))
        assert mgr.begin_request(s2) == 0

    def test_hit_allocates_nothing_for_cached_blocks(self):
        mgr = JengaKVCacheManager(mllama_specs(), 256 * 256)
        img = range(100, 132)
        s1 = vlm_seq("r1", img, range(1, 9))
        run_request(mgr, s1)
        mgr.release(s1)
        used_before = mgr.stats().used_bytes
        s2 = vlm_seq("r2", img, range(50, 58))
        hit = mgr.begin_request(s2)
        assert hit == 32
        # The cross-attention pages were acquired (shared), not copied.
        cross = mgr.allocator.groups["cross"]
        shared = [p for p in cross.pages.values() if p.ref_count >= 1]
        assert len(shared) == 8  # 32 image tokens / 4 per page


class TestVisionEmbeddingCacheReuse:
    def specs(self):
        return {
            "self": GroupSpec("self", FULL_ATTENTION, 2, 64, tokens_per_page=4),
            "vis": GroupSpec("vis", VISION_EMBEDDING, 1, 32, tokens_per_page=4,
                             accepted_tags=I),
        }

    def test_consumed_embeddings_do_not_grant_hits(self):
        """Embeddings freed on consumption (Section 6.2) are gone; a second
        identical request re-encodes, but its *LLM KV* still hits."""
        mgr = JengaKVCacheManager(self.specs(), 256 * 256)
        seq = SequenceSpec.multimodal(
            "r1", [(IMAGE, list(range(16))), (TEXT, [1, 2, 3, 4])]
        )
        mgr.begin_request(seq)
        assert mgr.allocate_vision(seq)
        assert mgr.allocate_up_to(seq, len(seq))
        mgr.commit(seq, len(seq), now=1.0)
        mgr.consume_vision(seq, len(seq))
        assert mgr.allocator.groups["vis"].n_used == 0
        mgr.release(seq)

        seq2 = SequenceSpec.multimodal(
            "r2", [(IMAGE, list(range(16))), (TEXT, [1, 2, 3, 4, 5])]
        )
        hit = mgr.begin_request(seq2)
        # Self-attention KV of image+text prefix is cached -> deep hit even
        # though the embeddings themselves were freed.
        assert hit == 20


class TestEvictionAcrossStreams:
    def test_evicting_cross_cache_shrinks_hit(self):
        mgr = JengaKVCacheManager(mllama_specs(), 256 * 256)
        img = range(100, 132)
        s1 = vlm_seq("r1", img, range(1, 9))
        run_request(mgr, s1)
        mgr.release(s1)
        # Manually drop the cross-attention cache.
        cross = mgr.allocator.groups["cross"]
        for page_id in list(cross.evictor.items_in_order()):
            page = cross.pages[page_id]
            cross.evictor.remove(page_id)
            cross.cache_index.remove(page.block_hash, page_id)
            page.block_hash = None
            page.reset()
        s2 = vlm_seq("r2", img, range(1, 9), extra=[9])
        # Self-attention alone cannot carry the hit past the image span.
        assert mgr.begin_request(s2) == 0
