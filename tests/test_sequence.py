"""Tests for tagged token sequences and stream views."""

import pytest

from repro.core.sequence import IMAGE, TEXT, SequenceSpec

ALL = frozenset({TEXT, IMAGE})
T = frozenset({TEXT})
I = frozenset({IMAGE})


def vlm_seq():
    # [text x3][image x4][text x2]
    return SequenceSpec.multimodal(
        "r",
        [(TEXT, [1, 2, 3]), (IMAGE, [10, 11, 12, 13]), (TEXT, [4, 5])],
    )


class TestConstruction:
    def test_text_only(self):
        seq = SequenceSpec.text_only("r", [1, 2, 3])
        assert len(seq) == 3
        assert seq.count_tag(TEXT) == 3
        assert seq.count_tag(IMAGE) == 0

    def test_multimodal_spans(self):
        seq = vlm_seq()
        assert seq.image_spans == [(3, 7)]
        assert seq.count_tag(IMAGE) == 4
        assert seq.count_tag(TEXT) == 5

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            SequenceSpec("r", token_ids=[1, 2], tags=[TEXT])


class TestStreams:
    def test_stream_tokens_filters_by_tag(self):
        seq = vlm_seq()
        assert seq.stream_tokens(T) == [1, 2, 3, 4, 5]
        assert seq.stream_tokens(I) == [10, 11, 12, 13]
        assert seq.stream_tokens(ALL) == [1, 2, 3, 10, 11, 12, 13, 4, 5]

    def test_stream_length_with_prefix(self):
        seq = vlm_seq()
        assert seq.stream_length(T, 5) == 3  # first 5 globals: 3 text
        assert seq.stream_length(I, 5) == 2
        assert seq.stream_length(ALL, 5) == 5
        assert seq.stream_length(T) == 5

    def test_stream_length_clamps(self):
        seq = vlm_seq()
        assert seq.stream_length(T, 999) == 5

    def test_global_prefix_for_stream(self):
        seq = vlm_seq()
        # 2 image tokens are first contained in the global prefix of 5.
        assert seq.global_prefix_for_stream(I, 2) == 5
        assert seq.global_prefix_for_stream(T, 4) == 8
        assert seq.global_prefix_for_stream(T, 0) == 0
        assert seq.global_prefix_for_stream(ALL, 6) == 6

    def test_global_prefix_beyond_stream_raises(self):
        seq = vlm_seq()
        with pytest.raises(ValueError):
            seq.global_prefix_for_stream(I, 5)

    def test_image_span_of(self):
        seq = vlm_seq()
        assert seq.image_span_of(3) == 0
        assert seq.image_span_of(6) == 0
        assert seq.image_span_of(0) is None
        assert seq.image_span_of(8) is None


class TestMutation:
    def test_append_updates_counts(self):
        seq = vlm_seq()
        before = seq.stream_length(T)
        seq.append(99)
        assert seq.stream_length(T) == before + 1
        assert seq.stream_tokens(T)[-1] == 99

    def test_append_after_counts_materialized(self):
        seq = vlm_seq()
        # Materialize the per-tag caches first.
        assert seq.stream_length(T, 5) == 3
        seq.append(99, TEXT)
        assert seq.stream_length(T, len(seq)) == 6
        assert seq.stream_length(I, len(seq)) == 4

    def test_extend(self):
        seq = SequenceSpec.text_only("r", [1])
        seq.extend([2, 3, 4])
        assert seq.token_ids == [1, 2, 3, 4]

    def test_truncate(self):
        seq = vlm_seq()
        seq.truncate(5)
        assert len(seq) == 5
        assert seq.image_spans == [(3, 5)]
        assert seq.stream_length(I) == 2

    def test_truncate_drops_span_entirely(self):
        seq = vlm_seq()
        seq.truncate(3)
        assert seq.image_spans == []

    def test_incremental_matches_rebuild(self):
        seq = vlm_seq()
        seq.stream_length(T, 4)  # materialize caches
        for i in range(10):
            seq.append(100 + i)
        fresh = SequenceSpec("x", list(seq.token_ids), list(seq.tags))
        for p in range(len(seq) + 1):
            assert seq.stream_length(T, p) == fresh.stream_length(T, p)
            assert seq.stream_length(I, p) == fresh.stream_length(I, p)
