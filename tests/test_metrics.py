"""Tests for metric aggregation."""

import pytest

from repro.core.events import EventBus, RequestPreempted, StepCompleted
from repro.core.math_utils import percentile
from repro.engine.metrics import (
    EngineMetrics,
    MemorySnapshot,
    MetricsCollector,
    RequestMetrics,
    StepRecord,
)


def req(rid="r", arrival=0.0, first=1.0, finish=5.0, prompt=10, out=5, cached=0):
    return RequestMetrics(
        request_id=rid,
        arrival_time=arrival,
        first_token_time=first,
        finish_time=finish,
        prompt_len=prompt,
        output_len=out,
        cached_prompt_tokens=cached,
        num_preemptions=0,
    )


def step(i=0, start=0.0, dur=1.0, decode=2, prefill=0):
    return StepRecord(
        index=i, start_time=start, duration=dur, decode_batch=decode,
        prefill_tokens=prefill, num_running=decode, num_waiting=0,
        num_preemptions=0,
    )


class TestRequestMetrics:
    def test_ttft_e2el(self):
        r = req(arrival=2.0, first=3.5, finish=10.0)
        assert r.ttft == 1.5
        assert r.e2el == 8.0

    def test_tpot(self):
        r = req(first=1.0, finish=9.0, out=5)
        assert r.tpot == 2.0

    def test_tpot_single_token(self):
        assert req(out=1).tpot == 0.0


class TestEngineMetrics:
    def test_empty(self):
        m = EngineMetrics()
        assert m.makespan == 0.0
        assert m.token_throughput() == 0.0
        assert m.mean_ttft() == 0.0
        assert m.mean_decode_batch() == 0.0

    def test_makespan(self):
        m = EngineMetrics(steps=[step(0, 0.0, 1.0), step(1, 1.0, 2.5)])
        assert m.makespan == 3.5

    def test_throughputs(self):
        m = EngineMetrics(
            steps=[step(0, 0.0, 10.0)],
            requests=[req(prompt=10, out=5), req(prompt=20, out=5)],
        )
        assert m.total_output_tokens == 10
        assert m.output_throughput() == 1.0
        assert m.token_throughput() == 4.0
        assert m.request_throughput() == 0.2

    def test_mean_decode_batch_ignores_prefill_only_steps(self):
        m = EngineMetrics(steps=[step(decode=4), step(decode=0, prefill=100), step(decode=6)])
        assert m.mean_decode_batch() == 5.0
        assert m.decode_batch_timeline() == [4, 0, 6]

    def test_latency_means(self):
        m = EngineMetrics(requests=[req(first=1.0, finish=5.0), req(first=3.0, finish=7.0)])
        assert m.mean_ttft() == 2.0
        assert m.mean_e2el() == 6.0

    def test_p99(self):
        # Nearest-rank: the 99th of 100 ordered samples, not the maximum
        # (the old int(q*n) index was biased one rank high).
        rs = [req(first=float(i)) for i in range(100)]
        m = EngineMetrics(requests=rs)
        assert m.p99_ttft() == 98.0


class TestPercentile:
    def test_p99_of_100_is_not_the_max(self):
        values = [float(i) for i in range(100)]
        assert percentile(values, 0.99) == 98.0
        assert percentile(values, 1.0) == 99.0

    def test_p50_even_length_is_lower_median(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0

    def test_p50_odd_length_is_exact_median(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes_and_unsorted_input(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class TestMetricsCollector:
    def test_collects_from_bus(self):
        bus = EventBus(capacity=0)
        collector = MetricsCollector(bus)
        bus.emit(StepCompleted(0, 0.5, 0, record=step()))
        bus.emit(RequestPreempted("r0", 0.5))
        assert len(collector.steps) == 1
        assert collector.preemptions == 1

    def test_close_unsubscribes_idempotently(self):
        bus = EventBus(capacity=0)
        collector = MetricsCollector(bus)
        bus.emit(StepCompleted(0, 0.5, 0, record=step()))
        collector.close()
        collector.close()  # idempotent
        bus.emit(StepCompleted(1, 1.0, 0, record=step(i=1)))
        assert len(collector.steps) == 1  # post-close event not counted

    def test_closed_collector_does_not_leak_onto_shared_bus(self):
        """Two engine runs on one bus must not cross-count events."""
        bus = EventBus(capacity=0)
        first = MetricsCollector(bus)
        bus.emit(RequestPreempted("r0", 0.1))
        first.close()
        second = MetricsCollector(bus)
        bus.emit(RequestPreempted("r1", 0.2))
        assert first.preemptions == 1
        assert second.preemptions == 1


class TestMemorySnapshot:
    def test_used_bytes(self):
        snap = MemorySnapshot(
            used_by_group={"a": 10, "b": 20}, evictable_bytes=5, waste_bytes=1,
            free_bytes=64,
        )
        assert snap.used_bytes == 30
