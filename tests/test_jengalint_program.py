"""Whole-program jengalint: cross-module rules, baseline, CLI, budget."""

import json
import shutil
import time
from pathlib import Path

import pytest

from repro.analysis import lint_paths, load_baseline, write_baseline
from repro.analysis.__main__ import main as lint_main
from repro.analysis.program import PROGRAM_RULE_NAMES
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"
BASELINE = Path(__file__).parent.parent / "lint-baseline.json"

#: cross-module rule -> its project_* fixture directory.
PROJECT_FIXTURES = {
    "event-registry": "project_event_registry",
    "orphan-event": "project_orphan",
    "invalidation-coverage": "project_invalidation",
    "manifest-drift": "project_manifest_drift",
    "interprocedural-emit": "project_interproc",
}


def test_every_program_rule_has_a_fixture_tree():
    assert sorted(PROJECT_FIXTURES) == sorted(PROGRAM_RULE_NAMES)
    for tree in PROJECT_FIXTURES.values():
        assert (FIXTURES / tree / "bad").is_dir()
        assert (FIXTURES / tree / "clean").is_dir()


@pytest.mark.parametrize("rule,tree", sorted(PROJECT_FIXTURES.items()))
def test_bad_tree_is_flagged(rule, tree):
    result = lint_paths([str(FIXTURES / tree / "bad")])
    assert result.findings, f"{tree}/bad produced no findings"
    assert {f.rule for f in result.findings} == {rule}
    assert not result.errors
    for f in result.findings:
        assert f.subject, "cross-module findings carry a symbolic subject"


@pytest.mark.parametrize("rule,tree", sorted(PROJECT_FIXTURES.items()))
def test_clean_near_miss_tree_passes(rule, tree):
    result = lint_paths([str(FIXTURES / tree / "clean")])
    assert result.findings == []
    assert result.errors == []


def test_lone_files_skip_program_rules():
    """Without a manifest in the analyzed set, cross-module rules are off."""
    result = lint_paths([str(FIXTURES / "project_orphan" / "bad" / "pool.py")])
    assert result.findings == []


def test_suppression_silences_cross_module_finding(tmp_path):
    src = FIXTURES / "project_orphan" / "bad"
    result = lint_paths([str(src)])
    (finding,) = result.findings
    tree = tmp_path / "bad"
    shutil.copytree(src, tree)
    target = tree / Path(finding.path).name
    lines = target.read_text().splitlines()
    lines[finding.line - 1] += "  # jengalint: disable=orphan-event"
    target.write_text("\n".join(lines) + "\n")
    assert lint_paths([str(tree)]).findings == []


def test_real_tree_is_clean_with_committed_baseline():
    result = lint_paths([str(SRC)], baseline=str(BASELINE))
    assert result.findings == []
    assert result.errors == []
    # The committed baseline carries no grandfathered findings: the tree
    # is genuinely clean, not baselined-clean.
    assert load_baseline(str(BASELINE)) == set()


# -- stable IDs and the baseline workflow ---------------------------------


def test_finding_ids_are_stable_and_line_independent():
    bad = str(FIXTURES / "project_orphan" / "bad")
    first = lint_paths([bad]).findings
    second = lint_paths([bad]).findings
    assert [f.id for f in first] == [f.id for f in second]
    (finding,) = first
    # Subject-anchored: the ID hashes rule|subject, not the line number.
    assert finding.subject == "event:WidgetMade"
    assert len(finding.id) == 12


def test_baseline_grandfathers_then_goes_stale(tmp_path):
    bad = str(FIXTURES / "project_orphan" / "bad")
    clean = str(FIXTURES / "project_orphan" / "clean")
    baseline = tmp_path / "baseline.json"
    write_baseline(str(baseline), lint_paths([bad]).findings)
    assert load_baseline(str(baseline))
    # Grandfathered: the same tree now lints clean against the baseline.
    grandfathered = lint_paths([bad], baseline=str(baseline))
    assert grandfathered.findings == []
    # Fixed: the finding no longer fires, so the baseline entry is stale
    # and itself becomes a finding (the baseline only shrinks).
    fixed = lint_paths([clean], baseline=str(baseline))
    assert [f.rule for f in fixed.findings] == ["stale-baseline"]
    assert fixed.findings[0].path == str(baseline)


def test_malformed_baseline_is_an_analysis_error(tmp_path):
    bad_baseline = tmp_path / "baseline.json"
    bad_baseline.write_text("{\"version\": 99}")
    result = lint_paths([str(FIXTURES / "clean.py")], baseline=str(bad_baseline))
    assert [f.rule for f in result.errors] == ["baseline-error"]


def test_write_baseline_cli_roundtrip(tmp_path):
    bad = str(FIXTURES / "project_orphan" / "bad")
    baseline = tmp_path / "baseline.json"
    assert lint_main([bad, "--write-baseline", str(baseline)]) == 0
    assert lint_main([bad, "--baseline", str(baseline)]) == 0
    assert lint_main([bad]) == 1


# -- output formats and exit codes ----------------------------------------


def test_json_output_is_stable_across_runs(tmp_path):
    out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
    for out in (out1, out2):
        code = lint_main(
            [str(SRC), "--format", "json", "--output", str(out),
             "--baseline", str(BASELINE)]
        )
        assert code == 0
    assert out1.read_text() == out2.read_text()
    payload = json.loads(out1.read_text())
    assert payload["findings"] == []
    assert payload["errors"] == []
    assert payload["stats"]["files"] == payload["stats"]["parses"]


def test_json_payload_shape(tmp_path):
    out = tmp_path / "findings.json"
    code = lint_main(
        [str(FIXTURES / "project_orphan" / "bad"), "--format", "json",
         "--output", str(out)]
    )
    assert code == 1
    (entry,) = json.loads(out.read_text())["findings"]
    assert entry["rule"] == "orphan-event"
    assert entry["subject"] == "event:WidgetMade"
    assert set(entry) == {"id", "rule", "path", "line", "col", "subject", "message"}


def test_github_annotations(capsys):
    code = lint_main([str(FIXTURES / "project_orphan" / "bad"), "--github"])
    assert code == 1
    out = capsys.readouterr().out
    annotations = [l for l in out.splitlines() if l.startswith("::error ")]
    assert len(annotations) == 1
    assert "file=" in annotations[0] and ",line=" in annotations[0]
    assert "title=jengalint orphan-event" in annotations[0]


def test_exit_codes_distinguish_findings_from_crashes(tmp_path):
    assert lint_main([str(FIXTURES / "clean.py")]) == 0
    assert lint_main([str(FIXTURES / "bad_probe.py")]) == 1
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert lint_main([str(broken)]) == 2
    # A crash outranks findings: broken file + bad fixture -> still 2.
    assert lint_main([str(broken), str(FIXTURES / "bad_probe.py")]) == 2


def test_cli_lint_exit_codes(tmp_path, capsys):
    assert cli_main(["lint", str(FIXTURES / "clean.py")]) == 0
    assert cli_main(["lint", str(FIXTURES / "bad_probe.py")]) == 1
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert cli_main(["lint", str(broken)]) == 2
    capsys.readouterr()
    assert cli_main(
        ["lint", str(SRC), "--format", "json", "--baseline", str(BASELINE)]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == [] and payload["errors"] == []


# -- mutation coverage: the real tree turns red in one lint run -----------


def _mutated_tree(tmp_path, rel, old, new):
    root = tmp_path / "repro"
    shutil.copytree(SRC / "repro", root)
    target = root / rel
    text = target.read_text()
    assert old in text, f"mutation anchor missing from {rel}"
    target.write_text(text.replace(old, new, 1))
    return root


def test_deleting_registry_entry_turns_tree_red(tmp_path):
    root = _mutated_tree(
        tmp_path, "analysis/manifest.py", '        "RequestRouted",\n', ""
    )
    result = lint_paths([str(root)])
    assert {f.rule for f in result.findings} == {"event-registry"}
    assert {f.subject for f in result.findings} == {"event:RequestRouted"}


def test_dropping_invalidating_event_turns_tree_red(tmp_path):
    root = _mutated_tree(
        tmp_path, "core/admission.py", "        PageEvicted,\n", ""
    )
    result = lint_paths([str(root)])
    assert {f.rule for f in result.findings} == {"invalidation-coverage"}
    assert {f.subject for f in result.findings} == {"event:PageEvicted"}


def test_dropping_quota_event_from_invalidators_turns_tree_red(tmp_path):
    # QuotaResized moves the admission carve headroom, so dropping it from
    # the cache's INVALIDATING tuple must trip invalidation-coverage --
    # the lint that keeps resize events wired into snapshot rebuilds.
    root = _mutated_tree(
        tmp_path, "core/admission.py", "        QuotaResized,\n", ""
    )
    result = lint_paths([str(root)])
    assert {f.rule for f in result.findings} == {"invalidation-coverage"}
    assert {f.subject for f in result.findings} == {"event:QuotaResized"}


def test_removing_subscribe_site_turns_tree_red(tmp_path):
    # AdmissionBlocked's only subscriber is the pressure monitor; dropping
    # it from the dispatch tuple orphans exactly that event (the tuple's
    # other events have further subscribers elsewhere in the tree).
    root = _mutated_tree(
        tmp_path,
        "obs/pressure.py",
        "        AdmissionBlocked,\n",
        "",
    )
    result = lint_paths([str(root)])
    assert {f.rule for f in result.findings} == {"orphan-event"}
    assert {f.subject for f in result.findings} == {"event:AdmissionBlocked"}


# -- bench guard ----------------------------------------------------------


def test_full_tree_lint_stays_in_budget():
    """One parse per file, and the whole run stays interactive-fast."""
    start = time.perf_counter()
    result = lint_paths([str(SRC)])
    elapsed = time.perf_counter() - start
    assert result.stats["files"] > 50
    # The whole-program phase rides the per-file walk: adding it must not
    # introduce a second parse of any file.
    assert result.stats["parses"] == result.stats["files"]
    assert elapsed < 10.0, f"lint took {elapsed:.1f}s; budget is 10s"
