"""PressureMonitor: event folding, engine integration, guarded emission."""

from repro.baselines import make_manager
from repro.core.events import (
    AdmissionBlocked,
    EventBus,
    PageEvicted,
    RequestPreempted,
    StepCompleted,
)
from repro.engine import LLMEngine, Request, SchedulerConfig
from repro.engine.metrics import MemorySnapshot, StepRecord
from repro.engine.scheduler import profile_config
from repro.models import GIB, get_model
from repro.obs import PressureMonitor, TelemetryRegistry
from repro.platforms import H100
from repro.workloads import token_block

MODEL = get_model("llama3.2-1b")


def step_event(index=0, t=1.0, memory=None):
    record = StepRecord(
        index=index, start_time=t, duration=0.01, decode_batch=1,
        prefill_tokens=0, num_running=1, num_waiting=0, num_preemptions=0,
        memory=memory,
    )
    return StepCompleted(index=index, time=t, num_preemptions=0, record=record)


class TestPressureMonitorUnit:
    def test_admission_blocks_feed_counter_and_rate(self):
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        assert bus.has_subscribers(AdmissionBlocked)
        bus.emit(AdmissionBlocked("r0", 1.0, queue_depth=3, num_running=2))
        bus.emit(AdmissionBlocked("r0", 1.1, queue_depth=4, num_running=2))
        bus.emit(step_event(t=1.2))
        reg = monitor.registry
        assert reg.counters["pressure/admission_blocked"] == 2
        assert reg.gauges["pressure/queue_depth"] == 4.0
        assert reg.gauges["pressure/blocked_rate"] > 0.0
        assert monitor.score > 0.0
        assert reg.gauges["pressure/score"] == monitor.score

    def test_per_group_eviction_rates(self):
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        for _ in range(3):
            bus.emit(PageEvicted("full", 1, "small"))
        bus.emit(PageEvicted("win", 2, "large"))
        bus.emit(step_event())
        reg = monitor.registry
        assert reg.counters["pressure/evictions"] == 4
        assert reg.counters["pressure/group/full/evictions"] == 3
        assert reg.counters["pressure/group/win/evictions"] == 1
        assert (reg.gauges["pressure/group/full/eviction_rate"]
                > reg.gauges["pressure/group/win/eviction_rate"] > 0.0)

    def test_rates_decay_over_quiet_steps(self):
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        bus.emit(AdmissionBlocked("r0", 1.0, queue_depth=1, num_running=1))
        bus.emit(step_event(index=0, t=1.0))
        busy = monitor.registry.gauges["pressure/blocked_rate"]
        for i in range(1, 20):
            bus.emit(step_event(index=i, t=1.0 + i))
        quiet = monitor.registry.gauges["pressure/blocked_rate"]
        assert 0.0 < quiet < busy

    def test_memory_snapshot_feeds_waste_and_occupancy(self):
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        memory = MemorySnapshot(
            used_by_group={"g": 6000}, evictable_bytes=1000,
            waste_bytes=1000, free_bytes=2000,
        )
        bus.emit(step_event(memory=memory))
        reg = monitor.registry
        assert reg.gauges["pressure/waste_frac"] == 0.1
        # occupancy excludes free + evictable (reclaimable headroom)
        assert reg.gauges["pressure/occupancy"] == 0.7
        assert monitor.score == 0.7  # occupancy dominates with no blocks
        timeline = reg.timelines["pressure/score"]
        assert timeline.last == (1.0, 0.7)

    def test_preemptions_feed_score(self):
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        for _ in range(10):
            bus.emit(RequestPreempted("r0", 1.0))
        bus.emit(step_event())
        reg = monitor.registry
        assert reg.counters["pressure/preemptions"] == 10
        assert 0.0 < monitor.score <= 1.0

    def test_score_clipped_to_one(self):
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        for i in range(50):
            for _ in range(20):
                bus.emit(AdmissionBlocked("r", float(i), 1, 1))
            bus.emit(step_event(index=i, t=float(i)))
        assert monitor.score == 1.0

    def test_close_is_idempotent_and_detaches(self):
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        bus.emit(AdmissionBlocked("r0", 1.0, 1, 1))
        monitor.close()
        monitor.close()
        assert not bus.has_subscribers(AdmissionBlocked)
        bus.emit(AdmissionBlocked("r1", 2.0, 1, 1))  # goes nowhere
        assert monitor.registry.counters["pressure/admission_blocked"] == 1

    def test_shared_registry_adopted(self):
        reg = TelemetryRegistry()
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus, registry=reg)
        assert monitor.registry is reg


class TestEngineEmission:
    def _pressured_engine(self, events):
        # ~96 MiB with ~42 MiB per request: roughly two fit, the rest of
        # the waiting queue blocks at admission.
        manager = make_manager("jenga", MODEL, 96 * 1024 * 1024)
        return LLMEngine(
            MODEL, H100, manager,
            config=profile_config("vllm", record_memory=True), events=events,
        )

    def _requests(self, n=12):
        return [
            Request.text(f"p{i}", token_block(0, "press", i, 300), 32)
            for i in range(n)
        ]

    def test_blocked_admission_emits_event(self):
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        engine = self._pressured_engine(bus)
        engine.add_requests(self._requests())
        metrics = engine.run(max_steps=20_000)
        engine.close()
        monitor.close()
        assert len(metrics.requests) == 12
        reg = monitor.registry
        assert reg.counters["pressure/admission_blocked"] > 0
        assert bus.counts["AdmissionBlocked"] == (
            reg.counters["pressure/admission_blocked"]
        )
        # record_memory=True populated the waste/occupancy gauges too.
        assert "pressure/occupancy" in reg.gauges
        assert len(reg.timelines["pressure/score"].points) > 0

    def test_no_subscriber_means_no_event_constructed(self):
        bus = EventBus(capacity=0)  # pure dispatch, nobody listening
        engine = self._pressured_engine(bus)
        engine.add_requests(self._requests())
        engine.run(max_steps=20_000)
        engine.close()
        assert bus.counts.get("AdmissionBlocked", 0) == 0

    def test_gate_suppresses_redundant_block_events(self):
        # The AdmissionGate memo skips provably redundant re-probes, so
        # blocked events must be far rarer than engine steps.
        bus = EventBus(capacity=0)
        monitor = PressureMonitor(bus)
        engine = self._pressured_engine(bus)
        engine.add_requests(self._requests())
        metrics = engine.run(max_steps=20_000)
        engine.close()
        monitor.close()
        blocked = monitor.registry.counters["pressure/admission_blocked"]
        assert 0 < blocked < len(metrics.steps)
