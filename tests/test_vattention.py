"""Tests for the vAttention-style virtual-memory baseline."""

import pytest

from repro.baselines import VAttentionManager, make_manager
from repro.core.sequence import SequenceSpec
from repro.models import GIB, get_model


class TestGeometry:
    def test_driver_granularity_in_tokens(self):
        # Llama-3 8B: 2 KiB per token per layer per K/V region ->
        # 2 MiB chunk = 1024 tokens.
        mgr = VAttentionManager(get_model("llama3-8b"), GIB)
        assert mgr.tokens_per_chunk == 1024

    def test_small_models_coarser_still(self):
        # Llama 3.2 1B: 1 KiB per K/V region per token -> 2048 tokens.
        mgr = VAttentionManager(get_model("llama3.2-1b"), GIB)
        assert mgr.tokens_per_chunk == 2048

    def test_no_prefix_caching(self):
        mgr = VAttentionManager(get_model("llama3-8b"), GIB)
        assert not mgr.enable_prefix_caching

    def test_factory(self):
        mgr = make_manager("vattention", get_model("llama3-8b"), GIB)
        assert isinstance(mgr, VAttentionManager)


class TestOverAllocation:
    def test_short_request_commits_full_chunks(self):
        """A 100-token request commits a whole 1024-token chunk in every
        layer -- the coarse-granularity waste the paper criticizes."""
        model = get_model("llama3-8b")
        vattn = VAttentionManager(model, 4 * GIB)
        paged = make_manager("vllm", model, 4 * GIB, enable_prefix_caching=False)
        for mgr in (vattn, paged):
            seq = SequenceSpec.text_only("r", list(range(100)))
            mgr.begin_request(seq)
            assert mgr.allocate_up_to(seq, 100)
            mgr.commit(seq, 100, now=1.0)
        # vAttention: 1024 tokens x 128 KiB = 128 MiB committed.
        assert vattn.stats().used_bytes == 1024 * 128 * 1024
        # PagedAttention: ceil(100/16) pages x 2 MiB = 14 MiB.
        assert paged.stats().used_bytes < vattn.stats().used_bytes / 8

    def test_fewer_short_requests_fit(self):
        model = get_model("llama3-8b")
        results = {}
        for system in ("vattention", "vllm"):
            mgr = make_manager(system, model, 2 * GIB, enable_prefix_caching=False)
            fitted = 0
            for i in range(64):
                seq = SequenceSpec.text_only(f"r{i}", list(range(100)))
                mgr.begin_request(seq)
                if not mgr.allocate_up_to(seq, 100):
                    break
                mgr.commit(seq, 100, now=1.0)
                fitted += 1
            results[system] = fitted
        assert results["vllm"] > 3 * results["vattention"]
