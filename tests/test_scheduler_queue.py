"""WaitingQueue tests: heap ordering, arrival gating, preemption priority."""

import random

from repro.core.events import EventBus, RequestQueued
from repro.engine.request import Request
from repro.engine.scheduler import WaitingQueue


def req(request_id, arrival, preemptions=0):
    r = Request.text(request_id, [1, 2, 3], 4, arrival_time=arrival)
    r.num_preemptions = preemptions
    return r


class TestOrdering:
    def test_fcfs_by_arrival_time(self):
        q = WaitingQueue()
        for rid, t in (("b", 2.0), ("a", 1.0), ("c", 3.0)):
            q.push(req(rid, t))
        order = [q.pop_ready(10.0).request_id for _ in range(3)]
        assert order == ["a", "b", "c"]

    def test_equal_arrival_preserves_push_order(self):
        q = WaitingQueue()
        for rid in ("x", "y", "z"):
            q.push(req(rid, 5.0))
        assert [q.pop_ready(10.0).request_id for _ in range(3)] == ["x", "y", "z"]

    def test_preempted_beats_fresh_arrival_on_equal_time(self):
        """A preempted request re-entering the queue must keep its
        scheduling priority over a fresh arrival with the same
        arrival_time, even though it is pushed *after* it."""
        q = WaitingQueue()
        q.push(req("fresh", 5.0))
        q.push(req("preempted", 5.0, preemptions=1))
        assert q.pop_ready(10.0).request_id == "preempted"
        assert q.pop_ready(10.0).request_id == "fresh"

    def test_preempted_requests_keep_relative_order(self):
        q = WaitingQueue()
        q.push(req("p1", 5.0, preemptions=2))
        q.push(req("p2", 5.0, preemptions=1))
        assert [q.pop_ready(10.0).request_id for _ in range(2)] == ["p1", "p2"]

    def test_earlier_fresh_arrival_still_beats_later_preempted(self):
        q = WaitingQueue()
        q.push(req("preempted", 5.0, preemptions=1))
        q.push(req("fresh", 4.0))
        assert q.pop_ready(10.0).request_id == "fresh"

    def test_random_fill_drains_sorted(self):
        rng = random.Random(7)
        q = WaitingQueue()
        for i in range(300):
            # Coarse arrival grid to force plenty of ties.
            q.push(req(f"r{i}", float(rng.randrange(10)),
                       preemptions=rng.randrange(2)))
        drained = []
        while q:
            drained.append(q.pop_ready(1e9))
        keys = [(r.arrival_time, 0 if r.num_preemptions else 1) for r in drained]
        assert keys == sorted(keys)


class TestGating:
    def test_peek_and_pop_gate_on_arrival_time(self):
        q = WaitingQueue()
        q.push(req("late", 100.0))
        assert q.peek_ready(5.0) is None
        assert q.pop_ready(5.0) is None
        assert len(q) == 1
        assert q.pop_ready(100.0).request_id == "late"

    def test_next_arrival(self):
        q = WaitingQueue()
        assert q.next_arrival() is None
        q.push(req("a", 7.0))
        q.push(req("b", 3.0))
        assert q.next_arrival() == 3.0

    def test_len_and_bool(self):
        q = WaitingQueue()
        assert not q and len(q) == 0
        q.push(req("a", 0.0))
        assert q and len(q) == 1


class TestEvents:
    def test_push_emits_request_queued(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, [RequestQueued])
        q = WaitingQueue(events=bus)
        q.push(req("a", 1.5))
        assert len(seen) == 1
        assert seen[0].request_id == "a" and seen[0].arrival_time == 1.5
