"""Shared-allocator event topology: no view may steal the pool's bus.

Regression suite for the multi-engine event-routing bug: several
:class:`~repro.core.kv_manager.JengaKVCacheManager` views share one
:class:`~repro.core.two_level.TwoLevelAllocator`, and each wrapping engine
binds the manager onto its own per-engine bus.  The old ``bind_events``
reassigned the *shared* ``allocator.events``, so the last bind silently
won: every sibling's :class:`~repro.core.admission.AdmissionCache` stopped
receiving pool-event invalidations (stale ``can_admit`` verdicts), and
per-engine subscribers saw either nothing or a co-tenant's pool traffic.

The fix multicasts: the shared allocator's bus is an
:class:`~repro.core.events.EventFanout` over every bound view's bus, so
pool events reach all siblings and each view's bus stays its own.
"""

import pytest

from repro.core.events import (
    EventBus,
    EventFanout,
    PageAllocated,
    PagesAllocated,
    PrefixHit,
)
from repro.core.kv_manager import JengaKVCacheManager
from repro.core.layer_policy import FULL_ATTENTION, GroupSpec, make_policy
from repro.core.sequence import TEXT, SequenceSpec
from repro.core.two_level import TwoLevelAllocator

_TEXT = frozenset({TEXT})

# 4 tokens/page x 64 bytes/token = 256-byte pages; both groups identical so
# one small page == one large page and the shared pool is easy to reason
# about: ``total_bytes / 256`` pages up for grabs between the two views.
_PAGE_TOKENS = 4
_PAGE_BYTES = 256
_NUM_PAGES = 64


def _specs(prefix):
    gid = f"{prefix}/full"
    return {
        gid: GroupSpec(
            gid, FULL_ATTENTION, 1, 64, tokens_per_page=_PAGE_TOKENS,
            accepted_tags=_TEXT,
        )
    }


def _shared_pair():
    """Two manager views over one shared pool (build_shared_managers shape)."""
    specs_a, specs_b = _specs("a"), _specs("b")
    all_specs = {**specs_a, **specs_b}
    policies = {g: make_policy(s) for g, s in all_specs.items()}
    allocator = TwoLevelAllocator(
        _PAGE_BYTES * _NUM_PAGES, all_specs, policies, enable_prefix_caching=True
    )
    total = _PAGE_BYTES * _NUM_PAGES
    ma = JengaKVCacheManager(specs_a, total, shared_allocator=allocator)
    mb = JengaKVCacheManager(specs_b, total, shared_allocator=allocator)
    return allocator, ma, mb


def _fill_through(manager, request_id, tokens):
    """Hold ``tokens`` worth of pages through ``manager`` (USED, not evictable)."""
    seq = SequenceSpec.text_only(request_id, [hash((request_id, t)) & 0x7FFFFFFF
                                              for t in range(tokens)])
    manager.begin_request(seq)
    assert manager.allocate_up_to(seq, tokens)
    manager.commit(seq, tokens, now=0.0, phase="prefill")
    return seq


class TestBusStealingRegression:
    def test_can_admit_matches_uncached_after_cross_engine_churn(self):
        """The headline regression: two shared-pool engines with persistent
        per-replica buses (the serving-tier topology), engine restarts
        rebinding each manager onto its own bus, and cross-engine churn in
        between.  Pre-fix, ``allocator.events`` was last-bind-wins, so the
        sibling bound to the *same* bus the allocator happened to point at
        kept a clean-but-stale admission snapshot and served a wrong
        verdict; the fan-out delivers every pool event to every view.
        """
        _, ma, mb = _shared_pair()
        bus_a, bus_b = EventBus(), EventBus()
        # Engine construction order: each engine binds its manager view.
        ma.bind_events(bus_a)
        mb.bind_events(bus_b)

        # B warms its admission snapshot against the empty pool: a probe
        # needing the whole pool is (exactly) admissible.
        probe = SequenceSpec.text_only(
            "probe", list(range(_NUM_PAGES * _PAGE_TOKENS))
        )
        assert mb.can_admit(probe) is True
        assert mb.can_admit(probe) == mb.can_admit_uncached(probe)

        # Replica A restarts onto its persistent bus, then churns: half the
        # pool becomes USED through view A.
        ma.bind_events(bus_a)
        _fill_through(ma, "filler-a", _NUM_PAGES // 2 * _PAGE_TOKENS)

        # Replica B restarts onto *its* persistent bus (a no-op rebind from
        # B's point of view) and re-probes.  The cached and uncached
        # verdicts must agree -- pre-fix the cached path still believed the
        # pool was empty.
        mb.bind_events(bus_b)
        assert mb.can_admit(probe) == mb.can_admit_uncached(probe)
        assert mb.can_admit_uncached(probe) is False

    def test_sibling_buses_receive_pool_events(self):
        """Every bound view's bus sees the shared pool's allocation events
        (exact per-engine admission invalidation requires it); pre-fix only
        the last-bound bus did."""
        _, ma, mb = _shared_pair()
        bus_a, bus_b = EventBus(), EventBus()
        ma.bind_events(bus_a)
        mb.bind_events(bus_b)

        _fill_through(ma, "filler-a", 8 * _PAGE_TOKENS)
        alloc_events = (PageAllocated, PagesAllocated)
        assert any(bus_a.counts[t.__name__] for t in alloc_events)
        assert any(bus_b.counts[t.__name__] for t in alloc_events)

    def test_manager_level_events_stay_per_view(self):
        """Manager-level records (prefix lookups) are per-engine traffic and
        must NOT leak onto sibling buses -- only pool events multicast."""
        _, ma, mb = _shared_pair()
        bus_a, bus_b = EventBus(), EventBus()
        ma.bind_events(bus_a)
        mb.bind_events(bus_b)

        seq = _fill_through(ma, "lookup-a", 8 * _PAGE_TOKENS)
        ma.release(seq, cacheable=True)
        again = SequenceSpec.text_only(
            "lookup-a2", [hash(("lookup-a", t)) & 0x7FFFFFFF for t in range(8 * _PAGE_TOKENS)]
        )
        ma.begin_request(again)
        ma.release(again, cacheable=True)
        assert bus_a.counts[PrefixHit.__name__] > 0
        assert bus_b.counts[PrefixHit.__name__] == 0


class TestEventFanout:
    def test_emit_reaches_every_member_and_local_subscribers(self):
        fanout = EventFanout()
        a, b = EventBus(), EventBus()
        fanout.attach(a)
        fanout.attach(b)
        local = []
        fanout.subscribe(local.append, [PrefixHit])
        event = PrefixHit("r", 4, 8)
        fanout.emit(event)
        assert a.recent(PrefixHit) == [event]
        assert b.recent(PrefixHit) == [event]
        assert local == [event]

    def test_has_subscribers_unions_member_interest(self):
        fanout = EventFanout()
        quiet = EventBus(capacity=0)
        fanout.attach(quiet)
        assert not fanout.has_subscribers(PrefixHit)
        quiet.subscribe(lambda e: None, [PrefixHit])
        assert fanout.has_subscribers(PrefixHit)
        assert not fanout.has_subscribers(PageAllocated)

    def test_attach_is_idempotent_and_replace_swaps(self):
        fanout = EventFanout()
        a, b = EventBus(), EventBus()
        fanout.attach(a)
        fanout.attach(a)
        assert fanout.members == (a,)
        fanout.replace(a, b)
        assert fanout.members == (b,)
        # Replacing an unknown member just attaches the new bus.
        fanout.replace(a, a)
        assert fanout.members == (b, a)
        fanout.detach(b)
        assert fanout.members == (a,)

    def test_shared_ctor_installs_fanout_over_existing_bus(self):
        """A shared allocator built with an explicit bus keeps it as a
        fan-out member, so pre-existing pool observers keep their feed."""
        observer = EventBus()
        specs_a, specs_b = _specs("a"), _specs("b")
        all_specs = {**specs_a, **specs_b}
        policies = {g: make_policy(s) for g, s in all_specs.items()}
        allocator = TwoLevelAllocator(
            _PAGE_BYTES * _NUM_PAGES, all_specs, policies,
            enable_prefix_caching=True, events=observer,
        )
        total = _PAGE_BYTES * _NUM_PAGES
        ma = JengaKVCacheManager(specs_a, total, shared_allocator=allocator)
        mb = JengaKVCacheManager(specs_b, total, shared_allocator=allocator)
        assert isinstance(allocator.events, EventFanout)
        assert observer in allocator.events.members
        _fill_through(ma, "filler", 4 * _PAGE_TOKENS)
        assert observer.counts[PagesAllocated.__name__] + observer.counts[
            PageAllocated.__name__
        ] > 0
        assert mb.events is not ma.events


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
