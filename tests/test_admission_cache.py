"""Admission-bound cache tests: invalidation, memoization, cross-check.

The cache (``repro.core.admission``) answers ``can_admit`` from an
event-invalidated pool snapshot plus a per-request demand memo;
``can_admit_uncached`` is the recompute-everything cross-check.  These
tests pin down:

* the invalidation contract -- every event class that moves pool counts
  dirties the snapshot and bumps the version, everything else on the bus
  leaves both untouched;
* the ``PageAcquired`` regression -- a prefix-cache hit reactivates
  evictable pages without allocating, and before the fix emitted nothing,
  so the cached bound kept counting those pages as reclaimable (verified
  failing with the emission removed);
* the hypothesis property ``can_admit(...) == can_admit_uncached(...)``
  at every step of randomized allocate/commit/release/append churn;
* the engine's blocked-probe gate -- skipping a re-probe while the
  version is unchanged must not change scheduling outcomes, and must
  actually eliminate the per-step prefix-lookup rescans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import (
    EventBus,
    LargePageCarved,
    PageAcquired,
    PageAllocated,
    PageEvicted,
    PageEvictedToHost,
    PageReleased,
    PagesAllocated,
    PrefixHit,
    QuotaResized,
    RequestAdmitted,
    RequestQueued,
    StepCompleted,
)
from repro.core.kv_manager import JengaKVCacheManager
from repro.core.layer_policy import FULL_ATTENTION, GroupSpec, SLIDING_WINDOW
from repro.core.sequence import TEXT, SequenceSpec
from repro.engine import LLMEngine, Request, SchedulerConfig
from repro.engine.scheduler import AdmissionGate
from repro.models import get_model
from repro.platforms import H100
from repro.workloads import token_block

T = frozenset({TEXT})


def hetero_specs(tpp=4, window=8):
    return {
        "full": GroupSpec("full", FULL_ATTENTION, 2, 64, tokens_per_page=tpp,
                          accepted_tags=T),
        "win": GroupSpec("win", SLIDING_WINDOW, 2, 64, tokens_per_page=tpp,
                         window=window, accepted_tags=T),
    }


def make_manager(total=64 * 4 * 64, caching=True, specs=None):
    return JengaKVCacheManager(
        specs or hetero_specs(), total, enable_prefix_caching=caching
    )


INVALIDATING_EVENTS = [
    PageAllocated("full", "r", 1, 1),
    PagesAllocated("full", "r", (1, 2, 3), (1, 1, 2)),
    LargePageCarved("full", 1, 4),
    PageAcquired("full", 1, "r"),
    PageEvicted("full", 1, "small"),
    PageReleased("full", 1, True),
    QuotaResized("full", 8, 4, 6, 2),
]

NON_INVALIDATING_EVENTS = [
    PrefixHit("r", 0, 4),
    PageEvictedToHost("full", 123, 256),
    RequestQueued("r", 0.0),
    RequestAdmitted("r", 0.0),
    StepCompleted(0, 0.0, 0),
]


class TestInvalidation:
    @pytest.mark.parametrize(
        "event", INVALIDATING_EVENTS, ids=lambda e: type(e).__name__
    )
    def test_invalidating_event_dirties_snapshot(self, event):
        mgr = make_manager()
        cache = mgr._admission
        cache.snapshot()
        assert not cache.dirty
        version = cache.version
        mgr.events.emit(event)
        assert cache.dirty
        assert cache.version == version + 1

    @pytest.mark.parametrize(
        "event", NON_INVALIDATING_EVENTS, ids=lambda e: type(e).__name__
    )
    def test_non_invalidating_event_leaves_snapshot_clean(self, event):
        mgr = make_manager()
        cache = mgr._admission
        cache.snapshot()
        version = cache.version
        mgr.events.emit(event)
        assert not cache.dirty
        assert cache.version == version

    def test_snapshot_rebuilds_once_until_next_event(self):
        mgr = make_manager()
        cache = mgr._admission
        seq = SequenceSpec.text_only("probe", list(range(24)))
        mgr.can_admit(seq)
        rebuilds = cache.num_rebuilds
        for _ in range(5):
            mgr.can_admit(seq)
        assert cache.num_rebuilds == rebuilds  # no events, no rebuilds
        mgr.events.emit(PageAllocated("full", "r", 1, 1))
        mgr.can_admit(seq)
        assert cache.num_rebuilds == rebuilds + 1

    def test_bind_events_rehomes_invalidation(self):
        """bind_events must move the subscription and distrust old state."""
        mgr = make_manager()
        cache = mgr._admission
        cache.snapshot()
        version = cache.version
        new_bus = EventBus()
        mgr.bind_events(new_bus)
        assert cache.bus is new_bus
        assert cache.dirty
        assert cache.version > version
        cache.snapshot()
        new_bus.emit(PageAllocated("full", "r", 1, 1))
        assert cache.dirty

    def test_real_allocation_invalidates_through_the_allocator(self):
        mgr = make_manager()
        cache = mgr._admission
        probe = SequenceSpec.text_only("probe", list(range(24)))
        mgr.can_admit(probe)
        assert not cache.dirty
        seq = SequenceSpec.text_only("r1", list(range(16)))
        mgr.begin_request(seq)
        assert mgr.allocate_up_to(seq, 16)
        assert cache.dirty

    def test_batched_allocation_invalidates_like_singles(self):
        """One PagesAllocated must leave admission in the same state as
        the n PageAllocated events the batch replaced."""
        singles = make_manager()
        batched = make_manager()
        probe = SequenceSpec.text_only("probe", list(range(24)))
        assert singles.can_admit(probe) == batched.can_admit(probe)
        for _ in range(3):
            assert singles.allocator.allocate_page("full", "r") is not None
        pages = batched.allocator.allocate_pages("full", "r", 3)
        assert pages is not None and len(pages) == 3
        assert singles._admission.dirty
        assert batched._admission.dirty
        # Rebuilt snapshots must agree: same pool state, same verdicts.
        assert singles.can_admit(probe) == batched.can_admit(probe)
        assert (singles.allocator.stats().free_bytes
                == batched.allocator.stats().free_bytes)


class TestDemandMemo:
    def test_probe_hits_memo_until_length_changes(self):
        mgr = make_manager()
        cache = mgr._admission
        seq = SequenceSpec.text_only("r1", list(range(20)))
        mgr.can_admit(seq)
        misses = cache.num_demand_misses
        hits = cache.num_demand_hits
        for _ in range(4):
            mgr.can_admit(seq)
        assert cache.num_demand_misses == misses
        assert cache.num_demand_hits == hits + 4
        seq.append(999)  # new computed-length bucket
        mgr.can_admit(seq)
        assert cache.num_demand_misses == misses + 1

    def test_memo_capacity_is_bounded(self):
        mgr = make_manager()
        cache = mgr._admission
        cap = cache.DEMAND_CAPACITY
        for i in range(cap + 10):
            mgr.can_admit(SequenceSpec.text_only(f"r{i}", [1, 2, 3]))
        assert len(cache._demand) <= cap


class TestStaleBoundRegression:
    def test_prefix_hit_reacquire_updates_admission_bounds(self):
        """Prefix-hit reactivation (EVICTABLE -> USED) must invalidate.

        ``acquire_cached`` pulls pages out of the evictor without any
        allocation; before ``PageAcquired`` existed it emitted nothing,
        so the cached snapshot kept counting the reacquired pages as
        reclaimable and ``can_admit`` said yes to prompts the pool could
        no longer host (verified failing with the emission removed).
        """
        specs = {
            "full": GroupSpec("full", FULL_ATTENTION, 2, 64, tokens_per_page=4,
                              accepted_tags=T),
        }
        # Exactly 16 small pages; the donor fills all of them.
        mgr = make_manager(total=16 * 4 * 64, specs=specs)
        donor = SequenceSpec.text_only("donor", list(range(64)))
        mgr.begin_request(donor)
        assert mgr.allocate_up_to(donor, 64)
        mgr.commit(donor, 64, now=1.0, phase="prefill")
        mgr.release(donor, cacheable=True)  # whole pool now evictable

        probe = SequenceSpec.text_only("probe", list(range(1000, 1048)))
        # Prime the snapshot while the evictable pool covers the demand.
        assert mgr.can_admit(probe) is True
        assert mgr.can_admit(probe) == mgr.can_admit_uncached(probe)

        # Same-prefix request reacquires the cached pages: no allocation,
        # no release -- only the EVICTABLE -> USED transition.  The hit is
        # capped at len - 1 (one token must still be computed), so 15 of
        # the 16 pages flip to USED.
        reuser = SequenceSpec.text_only("reuser", list(range(64)))
        hit = mgr.begin_request(reuser)
        assert hit == 60
        assert mgr.can_admit_uncached(probe) is False
        assert mgr.can_admit(probe) == mgr.can_admit_uncached(probe)

    def test_cache_index_displacement_updates_admission_bounds(self):
        """Displacing a stale cached copy frees it outright; the freed
        page must be published (``PageReleased(cached=False)``) or the
        snapshot's free/evictable split goes stale.

        A twin request recomputes a block the cache already holds (the
        hit cap leaves the donor's last block unacquired), and its commit
        re-registers the same hash -- the index displacement frees the
        donor's old evictable copy without passing through release_page.
        """
        specs = {
            "full": GroupSpec("full", FULL_ATTENTION, 2, 64, tokens_per_page=4,
                              accepted_tags=T),
        }
        mgr = make_manager(total=16 * 4 * 64, specs=specs)
        cache = mgr._admission
        donor = SequenceSpec.text_only("donor", list(range(8)))
        mgr.begin_request(donor)
        assert mgr.allocate_up_to(donor, 8)
        mgr.commit(donor, 8, now=1.0, phase="prefill")
        mgr.release(donor, cacheable=True)  # both blocks cached+evictable

        # The twin hits only block 0 (hit capped at len - 1 = 7 tokens)
        # and recomputes block 1 on a fresh page.
        twin = SequenceSpec.text_only("twin", list(range(8)))
        assert mgr.begin_request(twin) == 4
        assert mgr.allocate_up_to(twin, 8)

        # Clean the snapshot after the allocation churn, so the only
        # remaining invalidation source in commit() is the displacement.
        probe = SequenceSpec.text_only("probe", list(range(1000, 1016)))
        mgr.can_admit(probe)
        assert not cache.dirty
        mgr.commit(twin, 8, now=2.0, phase="prefill")
        assert cache.dirty  # displacement published the freed page
        assert mgr.can_admit(probe) == mgr.can_admit_uncached(probe)
        mgr.allocator.check_invariants()


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.sampled_from(
                    ["begin", "grow", "release_cached", "release_free", "append"]
                ),
            ),
            max_size=40,
        ),
        watermark=st.integers(min_value=0, max_value=8),
    )
    def test_cached_equals_uncached_under_churn(self, ops, watermark):
        mgr = make_manager(total=48 * 4 * 64)  # small pool: verdicts flip
        seqs = {}
        for i in range(6):
            # Half the requests share a prefix so churn produces real
            # prefix-cache hits (acquire_cached paths included).
            base = list(range(32)) if i % 2 == 0 else list(range(100 * i, 100 * i + 24))
            seqs[i] = SequenceSpec.text_only(f"r{i}", base + [1000 + i])
        active = set()
        now = 1.0

        def check_all():
            for seq in seqs.values():
                for chunk in (64, 8192):
                    assert mgr.can_admit(seq, watermark, chunk) == \
                        mgr.can_admit_uncached(seq, watermark, chunk)

        for i, op in ops:
            seq = seqs[i]
            if op == "begin" and i not in active:
                mgr.begin_request(seq)
                active.add(i)
            elif op == "grow" and i in active:
                if mgr.allocate_up_to(seq, len(seq)):
                    mgr.commit(seq, len(seq), now=now, phase="prefill")
                now += 1.0
            elif op == "release_cached" and i in active:
                mgr.release(seq, cacheable=True)
                active.discard(i)
            elif op == "release_free" and i in active:
                mgr.release(seq, cacheable=False)
                active.discard(i)
            elif op == "append" and i not in active:
                seq.append(2000 + len(seq))
            check_all()
        mgr.allocator.check_invariants()


class TestAdmissionGate:
    def test_matches_only_identical_triple(self):
        gate = AdmissionGate()
        assert not gate.should_skip("r1", 10, 5)
        gate.note_blocked("r1", 10, 5)
        assert gate.should_skip("r1", 10, 5)
        assert not gate.should_skip("r1", 10, 6)   # pool moved
        assert not gate.should_skip("r1", 11, 5)   # sequence grew
        assert not gate.should_skip("r2", 10, 5)   # different head
        gate.clear()
        assert not gate.should_skip("r1", 10, 5)

    def test_negative_version_disables_gate(self):
        gate = AdmissionGate()
        gate.note_blocked("r1", 10, -1)
        assert not gate.should_skip("r1", 10, -1)

    def test_engine_gate_skips_rescans_without_changing_schedule(self):
        """With the gate, blocked heads stop re-probing every step -- and
        scheduling outcomes stay identical to a gate-disabled run."""

        class UngatedManager(JengaKVCacheManager):
            def admission_version(self) -> int:
                return -1  # never let the engine skip a probe

        def build(manager_cls):
            model = get_model("llama3-8b")
            groups = model.kv_groups()
            manager = manager_cls(groups, 192 * 1024 * 1024)
            engine = LLMEngine(model, H100, manager,
                               config=SchedulerConfig(max_num_seqs=4))
            engine.add_requests([
                Request.text(f"r{i}", token_block(0, "r", i, 640), 24)
                for i in range(12)
            ])
            return engine

        gated = build(JengaKVCacheManager)
        ungated = build(UngatedManager)
        gm = gated.run(max_steps=20_000)
        um = ungated.run(max_steps=20_000)

        assert len(gm.requests) == len(um.requests) == 12
        order = lambda m: [r.request_id for r in m.requests]
        assert order(gm) == order(um)
        finish = lambda m: [r.finish_time for r in m.requests]
        assert finish(gm) == finish(um)
        assert len(gm.steps) == len(um.steps)

        # The gate must actually fire: the gated run performs far fewer
        # prefix lookups than one per (step x blocked head).
        assert gated.manager.lookup_tokens < ungated.manager.lookup_tokens
