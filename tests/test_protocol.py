"""Protocol conformance and registry tests for every KV-cache manager."""

import re
from pathlib import Path

import pytest

from repro.core.events import EventBus
from repro.core.protocols import KVCacheManager, KVCacheManagerBase
from repro.core.registry import (
    UnknownManagerError,
    available_managers,
    create_manager,
    register_manager,
    resolve_manager,
)
from repro.core.sequence import SequenceSpec
from repro.models import GIB, get_model

MODEL_SYSTEMS = available_managers("model")
SPEC_SYSTEMS = available_managers("spec")


def model_manager(system):
    return create_manager(system, "model", get_model("gemma2-9b"), GIB)


def spec_manager(system):
    return create_manager(
        system, "spec", get_model("llama3.2-1b"), get_model("llama3-8b"), GIB
    )


class TestRegistry:
    def test_expected_systems_registered(self):
        assert set(MODEL_SYSTEMS) >= {
            "jenga", "vllm", "sglang", "tgi", "max", "gcd", "vattention"
        }
        assert set(SPEC_SYSTEMS) == {"jenga", "vllm-max", "vllm-manual"}

    def test_available_managers_is_sorted(self):
        assert list(MODEL_SYSTEMS) == sorted(MODEL_SYSTEMS)

    def test_unknown_manager_error_lists_registered(self):
        with pytest.raises(UnknownManagerError) as exc:
            resolve_manager("triton", "model")
        message = str(exc.value)
        assert "triton" in message
        for name in MODEL_SYSTEMS:
            assert name in message
        # Still a KeyError for callers with pre-registry except clauses.
        assert isinstance(exc.value, KeyError)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            resolve_manager("jenga", "nonsense")
        with pytest.raises(ValueError):
            register_manager("x", kind="nonsense")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_manager("jenga", kind="model")(lambda: None)

    def test_resolve_returns_registered_factory(self):
        factory = resolve_manager("jenga", "model")
        manager = factory(get_model("gemma2-9b"), GIB)
        assert manager.name == "jenga"


class TestProtocolConformance:
    @pytest.mark.parametrize("system", MODEL_SYSTEMS)
    def test_model_managers_satisfy_protocol(self, system):
        manager = model_manager(system)
        assert isinstance(manager, KVCacheManager)
        assert isinstance(manager, KVCacheManagerBase)
        assert isinstance(manager.events, EventBus)
        assert isinstance(manager.name, str) and manager.name

    @pytest.mark.parametrize("system", SPEC_SYSTEMS)
    def test_spec_managers_satisfy_protocol(self, system):
        manager = spec_manager(system)
        assert isinstance(manager, KVCacheManager)
        assert isinstance(manager.events, EventBus)

    @pytest.mark.parametrize("system", MODEL_SYSTEMS)
    def test_protocol_surface_is_live(self, system):
        """Every protocol member works on a real request, not just exists."""
        manager = model_manager(system)
        seq = SequenceSpec.text_only("r1", list(range(64)))
        assert manager.begin_request(seq) == 0
        assert manager.can_allocate(seq, len(seq))
        assert manager.can_admit(seq)
        assert manager.allocate_up_to(seq, len(seq))
        manager.commit(seq, len(seq), now=1.0, phase="prefill")
        manager.touch(seq, now=2.0)
        assert manager.take_onload_bytes("r1") == 0
        stats = manager.stats()
        assert stats.used_bytes > 0
        assert manager.kernel_slowdown >= 1.0
        assert 0.0 <= manager.prefix_hit_rate <= 1.0
        assert isinstance(manager.has_vision_cache, bool)
        manager.release(seq, cacheable=True)

    @pytest.mark.parametrize("system", MODEL_SYSTEMS)
    def test_bind_events_rewires_the_bus(self, system):
        manager = model_manager(system)
        bus = EventBus()
        manager.bind_events(bus)
        assert manager.events is bus


class TestNoDuckTyping:
    def test_no_getattr_on_managers_in_source(self):
        """The protocol makes every manager attribute explicit; duck-typed
        ``getattr(manager, ...)`` probes must not creep back in."""
        src = Path(__file__).resolve().parents[1] / "src"
        pattern = re.compile(r"getattr\(.*manager")
        offenders = [
            f"{path}:{lineno}"
            for path in sorted(src.rglob("*.py"))
            for lineno, line in enumerate(path.read_text().splitlines(), 1)
            if pattern.search(line)
        ]
        assert not offenders, f"duck-typed manager access: {offenders}"
