"""Tests for GPU envelopes and the memory-budget split."""

import pytest

from repro.models import GIB, get_model
from repro.platforms import H100, L4, kv_budget
from repro.platforms.gpu import OutOfMemoryError


class TestEnvelopes:
    def test_h100_capacity(self):
        assert H100.memory_bytes == 80 * GIB
        assert H100.usable_bytes() == int(80 * GIB * 0.9)

    def test_l4_is_smaller_and_slower(self):
        assert L4.memory_bytes < H100.memory_bytes
        assert L4.flops < H100.flops
        assert L4.hbm_bandwidth < H100.hbm_bandwidth


class TestKVBudget:
    def test_llama8b_on_h100(self):
        budget = kv_budget(get_model("llama3-8b"), H100)
        assert budget.kv_bytes > 40 * GIB
        assert budget.weight_bytes == get_model("llama3-8b").weight_bytes

    def test_jamba_oom_on_l4(self):
        # Table 1: Jamba 52B does not fit on L4 even with FP8.
        with pytest.raises(OutOfMemoryError):
            kv_budget(get_model("jamba-52b", quantized=True), L4)

    def test_fp8_frees_memory(self):
        fp16 = kv_budget(get_model("llama3-8b"), H100)
        fp8 = kv_budget(get_model("llama3-8b", quantized=True), H100)
        assert fp8.kv_bytes > fp16.kv_bytes

    def test_extra_models_share_budget(self):
        target = get_model("llama3-8b")
        draft = get_model("llama3.2-1b")
        alone = kv_budget(target, H100)
        together = kv_budget(target, H100, extra_models=(draft,))
        assert together.kv_bytes < alone.kv_bytes
        assert together.weight_bytes == target.weight_bytes + draft.weight_bytes

    def test_70b_fp16_does_not_fit_h100(self):
        with pytest.raises(OutOfMemoryError):
            kv_budget(get_model("llama3-70b"), H100)

    def test_70b_fp8_fits_h100(self):
        # Table 1 serves the 70B models with FP8 on H100.
        budget = kv_budget(get_model("llama3-70b", quantized=True), H100)
        assert budget.kv_bytes > 0
