"""jengalint: fixtures flag, clean passes, suppressions round-trip."""

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, run_lint
from repro.analysis.__main__ import main as lint_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"

#: bad fixture -> the one rule it exists to trigger.
BAD_FIXTURES = {
    "bad_hot_path.py": "hot-path-scan",
    "bad_unguarded_emit.py": "unguarded-emit",
    "bad_unguarded_span.py": "unguarded-span",
    "bad_protocol.py": "protocol-conformance",
    "bad_probe.py": "duck-typed-probe",
    "bad_guarded_counter.py": "guarded-counter",
    "bad_per_token_rehash.py": "per-token-rehash",
    "bad_wall_clock.py": "wall-clock",
    "bad_dynamic_attr.py": "dynamic-attr",
}


def test_every_rule_has_a_bad_fixture():
    # The whole-program rule's fixtures are the project_* mini-trees,
    # covered by test_jengalint_program.py.
    per_file = sorted(r.name for r in ALL_RULES if r.name != "cross-module")
    assert sorted(BAD_FIXTURES.values()) == per_file


@pytest.mark.parametrize("fixture,rule", sorted(BAD_FIXTURES.items()))
def test_bad_fixture_is_flagged(fixture, rule):
    findings = run_lint([str(FIXTURES / fixture)])
    assert findings, f"{fixture} produced no findings"
    assert {f.rule for f in findings} == {rule}
    for f in findings:
        assert f.path.endswith(fixture)
        assert f.line >= 1
        assert rule in f.render()


def test_clean_fixture_passes():
    assert run_lint([str(FIXTURES / "clean.py")]) == []


@pytest.mark.parametrize("fixture,rule", sorted(BAD_FIXTURES.items()))
def test_suppression_comment_silences_each_finding(tmp_path, fixture, rule):
    """Round-trip: append disable=<rule> to every flagged line -> clean."""
    source_path = FIXTURES / fixture
    findings = run_lint([str(source_path)])
    lines = source_path.read_text().splitlines()
    for f in findings:
        lines[f.line - 1] += f"  # jengalint: disable={f.rule}"
    patched = tmp_path / fixture
    patched.write_text("\n".join(lines) + "\n")
    assert run_lint([str(patched)]) == []


def test_suppression_is_per_rule(tmp_path):
    """disable= for the wrong rule must not silence a finding."""
    source_path = FIXTURES / "bad_wall_clock.py"
    findings = run_lint([str(source_path)])
    lines = source_path.read_text().splitlines()
    for f in findings:
        lines[f.line - 1] += "  # jengalint: disable=hot-path-scan"
    patched = tmp_path / "bad_wall_clock.py"
    patched.write_text("\n".join(lines) + "\n")
    still = run_lint([str(patched)])
    assert len(still) == len(findings)
    assert {f.rule for f in still} == {"wall-clock"}


def test_module_directive_opts_into_hot_rules(tmp_path):
    """Without the module= retarget, hot-module rules stay quiet."""
    source = (FIXTURES / "bad_hot_path.py").read_text().splitlines()
    assert "jengalint: module=" in source[0]
    stripped = tmp_path / "bad_hot_path.py"
    stripped.write_text("\n".join(source[1:]) + "\n")
    assert run_lint([str(stripped)]) == []


def test_real_tree_is_clean():
    assert run_lint([str(SRC)]) == []


def test_cli_exit_codes(capsys):
    assert lint_main([str(FIXTURES / "bad_probe.py")]) == 1
    out = capsys.readouterr().out
    assert "duck-typed-probe" in out
    assert lint_main([str(FIXTURES / "clean.py")]) == 0
    assert lint_main(["--list-rules"]) == 0
    listed = capsys.readouterr().out.split()
    assert listed == [r.name for r in ALL_RULES]


def test_parse_error_is_reported(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    findings = run_lint([str(broken)])
    assert [f.rule for f in findings] == ["parse-error"]
